// Determinism analyzers: det-map-iter and det-global-rand.
//
// Both target the same failure mode at different entry points. Go map
// iteration order is intentionally randomized per run, so a map-range loop
// that appends to an output slice, writes to a stream or sends on a
// channel produces a different order every execution — exactly the silent
// drift PYTHIA's generated corpora must not have. Likewise, math/rand's
// package-global functions draw from a process-wide, auto-seeded source,
// so their output can never be pinned to an experiment seed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapIterAnalyzer flags `for … := range m` over a map whose body performs
// an order-sensitive operation — appending to a slice declared outside the
// loop, writing to a stream, or sending on a channel — unless the slice is
// later passed to a sort.* or slices.Sort* call in the same function.
func MapIterAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "det-map-iter",
		Doc: "map iteration feeding ordered output without a subsequent sort",
		Run: runMapIter,
	}
}

func runMapIter(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn := funcBody(n)
			if fn == nil {
				return true
			}
			out = append(out, mapIterInFunc(p, fn)...)
			return true
		})
	}
	return out
}

// funcBody returns the body of a function declaration or literal, else nil.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// mapIterInFunc analyzes one function body. Range statements over maps are
// gathered first; appends recorded inside them are excused when the target
// slice reaches a sort call positioned after the loop.
func mapIterInFunc(p *Package, body *ast.BlockStmt) []Diagnostic {
	if body == nil {
		return nil
	}
	type pendingAppend struct {
		obj  types.Object
		diag Diagnostic
		loop *ast.RangeStmt
	}
	var pending []pendingAppend
	var out []Diagnostic
	fixedLoops := map[*ast.RangeStmt]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != nil {
			// Nested literals are analyzed as their own functions.
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(p, rs) {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.AssignStmt:
				obj, pos := appendTarget(p, stmt, rs)
				if obj != nil {
					d := Diagnostic{
						Pos:     p.Fset.Position(pos),
						RuleID:  "det-map-iter",
						Message: fmt.Sprintf("append to %q inside map iteration: order is nondeterministic; sort %q after the loop or iterate sorted keys", obj.Name(), obj.Name()),
					}
					// One sorted-keys rewrite covers every append in the
					// loop; attach it to the first.
					if !fixedLoops[rs] {
						fixedLoops[rs] = true
						d.Fix = mapIterFix(p, body, rs)
					}
					pending = append(pending, pendingAppend{obj: obj, loop: rs, diag: d})
				}
			case *ast.SendStmt:
				out = append(out, Diagnostic{
					Pos:     p.Fset.Position(stmt.Pos()),
					RuleID:  "det-map-iter",
					Message: "channel send inside map iteration: delivery order is nondeterministic; iterate sorted keys",
				})
			case *ast.CallExpr:
				if name, ok := emitCall(p, stmt, rs); ok {
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(stmt.Pos()),
						RuleID:  "det-map-iter",
						Message: fmt.Sprintf("%s inside map iteration writes in nondeterministic order; iterate sorted keys", name),
					})
				}
			}
			return true
		})
		return true
	})

	for _, pa := range pending {
		if !sortedAfter(p, body, pa.obj, pa.loop.End()) {
			out = append(out, pa.diag)
		}
	}
	return out
}

// isMapRange reports whether rs ranges over a map.
func isMapRange(p *Package, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// appendTarget matches `x = append(x, …)` (or the multi-assign form) where
// x was declared before the range statement, returning x's object.
func appendTarget(p *Package, as *ast.AssignStmt, rs *ast.RangeStmt) (types.Object, token.Pos) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			continue
		}
		if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.Uses[lhs]
		if obj == nil {
			obj = p.Info.Defs[lhs]
		}
		// Only targets that outlive the loop can observe iteration order.
		if obj != nil && obj.Pos().IsValid() && obj.Pos() < rs.Pos() {
			return obj, as.Pos()
		}
	}
	return nil, token.NoPos
}

// emitWriters are method names that append to an ordered sink.
var emitWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true, "Encode": true,
}

// emitCall reports whether call writes to an ordered output stream: a
// fmt print/fprint function, io.WriteString, or a Write*/Print*/Encode
// method on a receiver declared outside the loop.
func emitCall(p *Package, call *ast.CallExpr, rs *ast.RangeStmt) (string, bool) {
	fn := pkgFunc(p.Info, call)
	if fn == nil {
		return "", false
	}
	full := fn.FullName()
	switch full {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return full, true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln", "io.WriteString":
		// Writing to a buffer created inside the loop body is order-safe;
		// anything reachable from before the loop observes iteration order.
		if len(call.Args) > 0 {
			if w, ok := rootIdent(call.Args[0]); ok {
				if obj := p.Info.Uses[w]; obj != nil && obj.Pos().IsValid() && obj.Pos() > rs.Pos() {
					return "", false
				}
			}
		}
		return full, true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !emitWriters[fn.Name()] {
		return "", false
	}
	// Method form: only flag when the receiver expression names a variable
	// declared before the loop; a per-iteration buffer is order-safe.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv, ok := rootIdent(sel.X)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[recv]
	if obj == nil || !obj.Pos().IsValid() || obj.Pos() >= rs.Pos() {
		return "", false
	}
	return full, true
}

// rootIdent unwraps selectors/derefs/indexes to the leftmost identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// sortedAfter reports whether obj appears in the arguments of a sort.* or
// slices.Sort* call located after pos in the same function body.
func sortedAfter(p *Package, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := pkgFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkgPath := fn.Pkg().Path()
		if pkgPath != "sort" && pkgPath != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				id, ok := a.(*ast.Ident)
				if ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// GlobalRandAnalyzer flags calls to math/rand's package-level functions
// (rand.Intn, rand.Shuffle, …) outside _test.go files. Constructors that
// build an injectable generator (rand.New, rand.NewSource, rand.NewZipf)
// are allowed; everything drawing from the global source is not.
func GlobalRandAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "det-global-rand",
		Doc: "package-global math/rand call; inject a seeded *rand.Rand",
		Run: runGlobalRand,
	}
}

// randConstructors build explicit sources rather than drawing from the
// global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runGlobalRand(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName, ok := p.Info.Uses[identOf(sel.X)].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || randConstructors[fn.Name()] {
				return true
			}
			out = append(out, Diagnostic{
				Pos:     p.Fset.Position(sel.Pos()),
				RuleID:  "det-global-rand",
				Message: fmt.Sprintf("use of global %s.%s: output cannot be pinned to a seed; inject a *rand.Rand (see internal/detrand)", path, fn.Name()),
				Fix:     globalRandFix(p, sel, path),
			})
			return true
		})
	}
	return out
}

// identOf returns e as an identifier, unwrapping parens, or nil.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
