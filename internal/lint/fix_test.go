package lint_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite .golden files from current -fix output")

// fixCases are the before/after fixture packages under testdata/fix. Each
// .go file with an applied fix must match its .golden byte-for-byte.
var fixCases = []string{"globalrand", "errwrap", "mapiter"}

// applyCaseFixes loads one fix fixture and computes its fixed content.
func applyCaseFixes(t *testing.T, name string) (*lint.FixResult, []lint.Diagnostic) {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("testdata", "fix", name))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	res, err := lint.ApplyFixes(pkgs, diags)
	if err != nil {
		t.Fatal(err)
	}
	return res, diags
}

func TestFixGolden(t *testing.T) {
	for _, name := range fixCases {
		t.Run(name, func(t *testing.T) {
			res, _ := applyCaseFixes(t, name)
			if len(res.Files) == 0 {
				t.Fatal("no fixes applied; fixture should contain fixable findings")
			}
			for file, got := range res.Files {
				golden := strings.TrimSuffix(file, ".go") + ".golden"
				if *updateGolden {
					if err := os.WriteFile(golden, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("fixed %s differs from %s:\n--- got ---\n%s\n--- want ---\n%s", file, golden, got, want)
				}
			}
		})
	}
}

// TestFixUnfixableKeepsFinding pins the boundary of the fix engine: a
// dropped error in a function that cannot propagate it is reported
// without a mechanical fix.
func TestFixUnfixableKeepsFinding(t *testing.T) {
	_, diags := applyCaseFixes(t, "errwrap")
	found := false
	for _, d := range diags {
		if d.RuleID != "err-ignored" {
			continue
		}
		if strings.Contains(d.Message, "os.Remove") && d.Fix == nil {
			found = true
		}
	}
	if !found {
		t.Error("expected an unfixable err-ignored finding (enclosing function returns nothing)")
	}
}

// TestFixFixpoint re-lints each fixture's fixed output: the rewrite must
// remove every finding it claims to fix, and introduce none. Output is
// staged inside testdata so module-local imports still resolve.
func TestFixFixpoint(t *testing.T) {
	for _, name := range fixCases {
		t.Run(name, func(t *testing.T) {
			res, _ := applyCaseFixes(t, name)
			tmp, err := os.MkdirTemp("testdata", "fixout-*")
			if err != nil {
				t.Fatal(err)
			}
			defer os.RemoveAll(tmp)
			for file, content := range res.Files {
				out := filepath.Join(tmp, filepath.Base(file))
				if err := os.WriteFile(out, content, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// The unfixable errwrap finding survives by design; everything
			// with a fix must be gone.
			loader, err := lint.NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := loader.Load(tmp)
			if err != nil {
				t.Fatalf("fixed output does not load: %v", err)
			}
			for _, d := range lint.Run(pkgs, lint.Analyzers()) {
				if d.Fix != nil {
					t.Errorf("fixed output still contains a fixable finding: %s", d)
				} else if name != "errwrap" {
					t.Errorf("fixed output contains unexpected finding: %s", d)
				}
			}
		})
	}
}

// TestApplyFixesSkipsOverlaps feeds two fixes editing the same bytes and
// checks the second is counted as skipped rather than corrupting output.
func TestApplyFixesSkipsOverlaps(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "fix", "globalrand")
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	var fixable []lint.Diagnostic
	for _, d := range diags {
		if d.Fix != nil {
			fixable = append(fixable, d)
			fixable = append(fixable, d) // duplicate: identical edit range
		}
	}
	if len(fixable) == 0 {
		t.Fatal("fixture produced no fixable findings")
	}
	res, err := lint.ApplyFixes(pkgs, fixable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != len(fixable)/2 {
		t.Errorf("Skipped = %d, want %d (one per duplicated fix)", res.Skipped, len(fixable)/2)
	}
}
