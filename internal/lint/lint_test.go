package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixtureDirs lists the deliberately-broken packages under testdata/src.
// Every fixture is run through ALL analyzers, and the findings must match
// the `// want rule-id` markers exactly — so each fixture also proves the
// other rules stay quiet on it.
var fixtureDirs = []string{
	"detmapiter",
	"detglobalrand",
	"errignored",
	"concloopcapture",
	"conclockcopy",
	"suppressed",
	"detflow",
	"telregistry",
	"conclockacross",
	"errlimit",
}

// wantMarkers walks fixture sources (recursively, for multi-package
// fixtures like detflow) for `// want rule-id` markers and returns
// "file:line:rule" keys.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := map[string]int{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, mark, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, id := range strings.Fields(mark) {
				want[fmt.Sprintf("%s:%d:%s", path, i+1, id)]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestFixtures(t *testing.T) {
	for _, name := range fixtureDirs {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			loader, err := lint.NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			loader.IncludeTests = true
			pkgs, err := loader.Load(dir + "/...")
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, d := range lint.Run(pkgs, lint.Analyzers()) {
				got[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.RuleID)]++
			}
			want := wantMarkers(t, dir)
			for k := range want {
				if got[k] == 0 {
					t.Errorf("missing finding %s", k)
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("unexpected finding %s (x%d)", k, n)
				}
			}
		})
	}
}

// TestFixtureRuleCoverage pins each fixture to its namesake rule: the rule
// must fire at least once there, proving every analyzer has a golden
// package exercising it.
func TestFixtureRuleCoverage(t *testing.T) {
	byFixture := map[string]string{
		"detmapiter":      "det-map-iter",
		"detglobalrand":   "det-global-rand",
		"errignored":      "err-ignored",
		"concloopcapture": "conc-loop-capture",
		"conclockcopy":    "conc-lock-copy",
		"suppressed":      "det-global-rand",
		"detflow":         "det-flow",
		"telregistry":     "tel-metric-registry",
		"conclockacross":  "conc-lock-across-call",
		"errlimit":        "err-limit-propagate",
	}
	for name, rule := range byFixture {
		want := wantMarkers(t, filepath.Join("testdata", "src", name))
		found := false
		for k := range want {
			if strings.HasSuffix(k, ":"+rule) {
				found = true
			}
		}
		if !found {
			t.Errorf("fixture %s has no want marker for rule %s", name, rule)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{RuleID: "det-map-iter", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: [det-map-iter] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAnalyzerByID(t *testing.T) {
	for _, a := range lint.Analyzers() {
		if lint.AnalyzerByID(a.ID) != a && lint.AnalyzerByID(a.ID) == nil {
			t.Errorf("AnalyzerByID(%q) did not resolve", a.ID)
		}
	}
	if lint.AnalyzerByID("no-such-rule") != nil {
		t.Error("AnalyzerByID on unknown ID should return nil")
	}
}

// TestLoaderModuleResolution builds a scratch module with a testdata
// directory and a module-local import, checking pattern expansion skips
// testdata and the importer resolves module paths from source.
func TestLoaderModuleResolution(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/scratch\n\ngo 1.22\n")
	write("a/a.go", "package a\n\nfunc A() int { return 1 }\n")
	write("a/testdata/skip.go", "package skipme\n\nfunc Broken() {\n")
	write("b/b.go", "package b\n\nimport \"example.com/scratch/a\"\n\nfunc B() int { return a.A() }\n")

	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dir + "/...")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)
	want := []string{"example.com/scratch/a", "example.com/scratch/b"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Errorf("loaded %v, want %v (testdata must be skipped, module imports resolved)", paths, want)
	}
}

// TestParallelLoadDeterministicOrder loads the full fixture tree at two
// worker counts: package order and every diagnostic must be identical,
// proving the concurrent loader changes only wall-clock time.
func TestParallelLoadDeterministicOrder(t *testing.T) {
	run := func(workers int) (paths, diags []string) {
		loader, err := lint.NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		loader.Workers = workers
		loader.IncludeTests = true
		pkgs, err := loader.Load("testdata/src/...")
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		for _, d := range lint.Run(pkgs, lint.Analyzers()) {
			diags = append(diags, d.String())
		}
		return paths, diags
	}
	seqPaths, seqDiags := run(1)
	parPaths, parDiags := run(8)
	if !sort.StringsAreSorted(seqPaths) {
		t.Errorf("package order is not sorted: %v", seqPaths)
	}
	if strings.Join(seqPaths, "\n") != strings.Join(parPaths, "\n") {
		t.Errorf("package order differs between 1 and 8 workers:\n%v\nvs\n%v", seqPaths, parPaths)
	}
	if strings.Join(seqDiags, "\n") != strings.Join(parDiags, "\n") {
		t.Errorf("diagnostics differ between 1 and 8 workers:\n%s\nvs\n%s",
			strings.Join(seqDiags, "\n"), strings.Join(parDiags, "\n"))
	}
	if len(seqDiags) == 0 {
		t.Error("fixture tree produced no diagnostics; determinism check is vacuous")
	}
}

// TestPatternNoMatchErrors pins the CLI contract that a pattern matching
// no packages is a load error naming the pattern, not a silent pass.
func TestPatternNoMatchErrors(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("testdata"); err == nil || !strings.Contains(err.Error(), `pattern "testdata" matched no packages`) {
		t.Errorf("plain no-Go-files dir: got %v, want matched-no-packages error", err)
	}
	empty := t.TempDir()
	if _, err := loader.Load(empty + "/..."); err == nil || !strings.Contains(err.Error(), "matched no packages") {
		t.Errorf("empty recursive pattern: got %v, want matched-no-packages error", err)
	}
}

// TestCleanPackageHasNoFindings runs all analyzers over this package's own
// loader/analyzer sources: the linter must hold itself to its own rules.
func TestCleanPackageHasNoFindings(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run(pkgs, lint.Analyzers()) {
		t.Errorf("unexpected finding in internal/lint: %s", d)
	}
}
