// Concurrency analyzers: conc-loop-capture and conc-lock-copy.
//
// The ROADMAP's next step is sharding the generation pipeline; these two
// rules pin down the classic hazards before that lands. conc-loop-capture
// guards goroutine bodies that read an enclosing loop's variable directly
// (pre-Go-1.22 semantics share one variable across iterations, and even
// with per-iteration variables the pattern hides which value a goroutine
// observes — pass it as an argument). conc-lock-copy catches sync
// primitives moved by value, which silently forks their internal state.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LoopCaptureAnalyzer flags goroutines launched with a function literal
// that references a variable of an enclosing for/range statement instead
// of receiving it as an argument.
func LoopCaptureAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "conc-loop-capture",
		Doc: "goroutine captures enclosing loop variable by reference",
		Run: runLoopCapture,
	}
}

func runLoopCapture(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		// The traversal keeps a stack of loop-variable objects for the
		// statements enclosing the current node.
		var stack []types.Object
		var walk func(n ast.Node, depth int)
		walk = func(n ast.Node, depth int) {
			mark := len(stack)
			switch s := n.(type) {
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id := identOf(e); id != nil {
						if obj := p.Info.Defs[id]; obj != nil {
							stack = append(stack, obj)
						}
					}
				}
			case *ast.ForStmt:
				if init, ok := s.Init.(*ast.AssignStmt); ok {
					for _, e := range init.Lhs {
						if id := identOf(e); id != nil {
							if obj := p.Info.Defs[id]; obj != nil {
								stack = append(stack, obj)
							}
						}
					}
				}
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && len(stack) > 0 {
					out = append(out, capturedLoopVars(p, lit, stack)...)
				}
			}
			ast.Inspect(n, func(child ast.Node) bool {
				if child == nil || child == n {
					return child == n
				}
				walk(child, depth+1)
				return false
			})
			stack = stack[:mark]
		}
		walk(f, 0)
	}
	return out
}

// capturedLoopVars reports each use inside lit of a variable on the loop
// stack. References in the call's argument list are evaluated before the
// goroutine starts and are therefore fine; only body uses are flagged.
func capturedLoopVars(p *Package, lit *ast.FuncLit, loopVars []types.Object) []Diagnostic {
	seen := make(map[types.Object]bool)
	var out []Diagnostic
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		for _, lv := range loopVars {
			if obj == lv {
				seen[obj] = true
				out = append(out, Diagnostic{
					Pos:     p.Fset.Position(id.Pos()),
					RuleID:  "conc-loop-capture",
					Message: fmt.Sprintf("goroutine captures loop variable %q by reference; pass it as an argument to the function literal", obj.Name()),
				})
			}
		}
		return true
	})
	return out
}

// LockCopyAnalyzer flags function signatures that move a sync primitive by
// value: parameters, results and value receivers whose type is (or
// contains, through struct or array composition) a sync.Mutex, RWMutex,
// WaitGroup, Once, Cond, Map or Pool.
func LockCopyAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "conc-lock-copy",
		Doc: "sync primitive passed, returned or received by value",
		Run: runLockCopy,
	}
}

// syncLockTypes are the sync types whose value-copy is always a bug.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

func runLockCopy(p *Package) []Diagnostic {
	var out []Diagnostic
	flag := func(n ast.Node, role, name string, t types.Type) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(n.Pos()),
			RuleID:  "conc-lock-copy",
			Message: fmt.Sprintf("%s %q copies %s by value; use a pointer", role, name, lockName(t)),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var recv *ast.FieldList
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, recv = fn.Type, fn.Recv
			case *ast.FuncLit:
				ftype = fn.Type
			default:
				return true
			}
			check := func(fl *ast.FieldList, role string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					tv, ok := p.Info.Types[field.Type]
					if !ok || tv.Type == nil || containsLock(tv.Type) == nil {
						continue
					}
					if len(field.Names) == 0 {
						flag(field.Type, role, tv.Type.String(), containsLock(tv.Type))
						continue
					}
					for _, name := range field.Names {
						flag(name, role, name.Name, containsLock(tv.Type))
					}
				}
			}
			check(recv, "receiver")
			check(ftype.Params, "parameter")
			check(ftype.Results, "result")
			return true
		})
	}
	return out
}

// containsLock returns the sync type reachable from t by value (directly,
// or through struct fields and array elements), or nil. Pointers, slices,
// maps and channels stop the search: sharing through them is the fix.
func containsLock(t types.Type) types.Type {
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return t
		}
		return containsLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if found := containsLock(u.Field(i).Type()); found != nil {
				return found
			}
		}
	case *types.Array:
		return containsLock(u.Elem())
	}
	return nil
}

// lockName renders the offending sync type for a message.
func lockName(t types.Type) string {
	if t == nil {
		return "a sync primitive"
	}
	return t.String()
}
