// det-flow: interprocedural determinism-taint analysis.
//
// The five syntactic rules see one function at a time; after the pipeline
// grew worker pools, shared caches and telemetry, the dangerous flows are
// cross-package — a time.Now three calls deep can poison generated output
// while every individual function looks innocent. det-flow tracks
// nondeterminism from its sources to the generation/serialization sinks
// along the module call graph:
//
// Sources (function-local, with a containment check):
//   - time.Now / time.Since (wall clock)
//   - package-global math/rand calls (process-global source)
//   - map-range order leaking into data that outlives the function
//   - goroutine-completion order (range over a channel fed by goroutines)
//   - select with two or more ready communication cases
//   - %p pointer formatting (addresses differ per run)
//
// Sanitizers:
//   - internal/detrand and internal/telemetry: calls into these packages
//     absorb taint — detrand pins values to the experiment seed, telemetry
//     is observability-only and feeds nothing back into generation.
//   - sort-before-emit: order taints excused by a later sort.* /
//     slices.Sort* call on the collected data (same logic as det-map-iter).
//
// Sinks: functions in generation/serialization packages (pythia, corpus,
// annotate, textgen, serialize) and example-writer functions by name
// (Serialize*, Emit*, WriteExample*, WriteCorpus*, MarshalExample*).
//
// A source only taints its function when its value escapes — reaches a
// return, an outer variable, a channel, or a module function call — rather
// than flowing exclusively into sanitizer calls. That distinction is what
// keeps the worker pool's time.Now-for-telemetry bookkeeping clean while
// still catching a wall-clock value laundered through three helpers into
// an emitted example.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// taintKind classifies a nondeterminism source.
type taintKind string

const (
	taintTime           taintKind = "wall-clock"
	taintRand           taintKind = "global-rand"
	taintMapOrder       taintKind = "map-order"
	taintGoroutineOrder taintKind = "goroutine-order"
	taintSelectOrder    taintKind = "select-order"
	taintPointerFmt     taintKind = "pointer-format"
)

// taintOrigin is the root source of one taint chain.
type taintOrigin struct {
	kind taintKind
	pos  token.Position // where the source call/statement is
	desc string         // e.g. "time.Now", "math/rand.Intn"
}

// funcTaint records why a function's output is nondeterministic: the root
// origin, the call chain from this function down to the origin's function,
// and the position inside this function where the taint enters.
type funcTaint struct {
	origin taintOrigin
	via    []FuncID
	pos    token.Pos
}

// sinkPackages are package-path last segments whose functions emit or
// serialize generated examples.
var sinkPackages = map[string]bool{
	"pythia": true, "corpus": true, "annotate": true,
	"textgen": true, "serialize": true,
}

// sinkFuncPrefixes mark example-writer functions in any package.
var sinkFuncPrefixes = []string{
	"Serialize", "Emit", "WriteExample", "WriteCorpus", "MarshalExample",
}

// sanitizerPackages absorb taint: values handed to them never feed back
// into generated output.
var sanitizerPackages = map[string]bool{"detrand": true, "telemetry": true}

// lastSegment returns the final path element of a package path.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isSanitizerPkg reports whether the package at path absorbs taint.
func isSanitizerPkg(path string) bool { return sanitizerPackages[lastSegment(path)] }

// isSinkNode reports whether node is a generation/serialization sink.
func isSinkNode(node *funcNode) bool {
	if isTestFile(node.pkg.Fset, node.decl.Pos()) {
		return false
	}
	if sinkPackages[lastSegment(node.id.pkgPath())] {
		return true
	}
	for _, prefix := range sinkFuncPrefixes {
		if strings.HasPrefix(node.fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// DetFlowAnalyzer is the whole-program determinism-taint rule.
func DetFlowAnalyzer() *Analyzer {
	return &Analyzer{
		ID:        "det-flow",
		Doc:       "nondeterminism source reaches a generation/serialization sink (interprocedural)",
		RunModule: runDetFlow,
	}
}

func runDetFlow(pkgs []*Package) []Diagnostic {
	g := buildCallGraph(pkgs)
	parents := make(map[FuncID]parentMap, len(g.funcs))
	pm := func(node *funcNode) parentMap {
		if m, ok := parents[node.id]; ok {
			return m
		}
		m := buildParents(node.decl.Body)
		parents[node.id] = m
		return m
	}

	// Seed: direct, escaping sources per function.
	tainted := make(map[FuncID]funcTaint)
	for _, id := range g.ids {
		node := g.funcs[id]
		if src, ok := directSource(node, pm(node), g); ok {
			tainted[id] = src
		}
	}

	// Fixpoint: a function becomes tainted when it calls a tainted,
	// non-sanitizer function and lets the result escape. Iteration order
	// is the sorted ID list and source-ordered call sites, so the first
	// chain found is deterministic.
	for changed := true; changed; {
		changed = false
		for _, id := range g.ids {
			if _, done := tainted[id]; done {
				continue
			}
			node := g.funcs[id]
			for _, site := range node.calls {
				ct, ok := tainted[site.callee]
				if !ok || isSanitizerPkg(site.callee.pkgPath()) {
					continue
				}
				if !escapes(node.pkg, pm(node), site.call, g, nil) {
					continue
				}
				tainted[id] = funcTaint{
					origin: ct.origin,
					via:    append([]FuncID{site.callee}, ct.via...),
					pos:    site.pos,
				}
				changed = true
				break
			}
		}
	}

	var out []Diagnostic
	for _, id := range g.ids {
		node := g.funcs[id]
		t, ok := tainted[id]
		if !ok || !isSinkNode(node) {
			continue
		}
		if len(t.via) == 0 {
			// Direct source inside the sink function. The syntactic rules
			// already own the rand and map-order shapes there; reporting
			// them again would double every intra-package finding.
			if t.origin.kind == taintRand || t.origin.kind == taintMapOrder {
				continue
			}
			out = append(out, Diagnostic{
				Pos:    node.pkg.Fset.Position(t.pos),
				RuleID: "det-flow",
				Message: fmt.Sprintf("%s (%s) in generation sink %s: output cannot be regenerated from the seed; use internal/detrand or emit in sorted order",
					t.origin.desc, t.origin.kind, id.shortName()),
			})
			continue
		}
		out = append(out, Diagnostic{
			Pos:    node.pkg.Fset.Position(t.pos),
			RuleID: "det-flow",
			Message: fmt.Sprintf("call to %s carries nondeterminism (%s: %s at %s:%d) into generation sink %s; pin it to the seed via internal/detrand or sort before emitting",
				t.via[0].shortName(), t.origin.kind, t.origin.desc,
				t.origin.pos.Filename, t.origin.pos.Line, id.shortName()),
		})
	}
	return out
}

// directSource finds the earliest escaping nondeterminism source in node's
// body, if any. Test files are exempt, matching det-global-rand.
func directSource(node *funcNode, pm parentMap, g *CallGraph) (funcTaint, bool) {
	p := node.pkg
	if isTestFile(p.Fset, node.decl.Pos()) {
		return funcTaint{}, false
	}
	var best funcTaint
	found := false
	record := func(pos token.Pos, kind taintKind, desc string) {
		if found && best.pos <= pos {
			return
		}
		best = funcTaint{
			origin: taintOrigin{kind: kind, pos: p.Fset.Position(pos), desc: desc},
			pos:    pos,
		}
		found = true
	}

	hasGo := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			hasGo = true
		}
		return true
	})

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := pkgFunc(p.Info, x)
			if fn != nil && fn.Pkg() != nil {
				switch fn.FullName() {
				case "time.Now", "time.Since":
					if escapes(p, pm, x, g, nil) {
						record(x.Pos(), taintTime, fn.FullName())
					}
				}
				if fn.Pkg().Path() == "fmt" {
					if lit := pointerVerbLit(x); lit != nil {
						// Print/Fprint emit directly; Sprint-style results
						// get the containment check.
						if strings.HasPrefix(fn.Name(), "S") || fn.Name() == "Errorf" {
							if escapes(p, pm, x, g, nil) {
								record(lit.Pos(), taintPointerFmt, "fmt."+fn.Name()+" with %p")
							}
						} else {
							record(lit.Pos(), taintPointerFmt, "fmt."+fn.Name()+" with %p")
						}
					}
				}
			}
		case *ast.SelectorExpr:
			pkgName, ok := p.Info.Uses[identOf(x.X)].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, ok := p.Info.Uses[x.Sel].(*types.Func)
			if !ok || randConstructors[fn.Name()] {
				return true
			}
			src := ast.Node(x)
			if call, isCall := pm[x].(*ast.CallExpr); isCall && call.Fun == ast.Node(x) {
				src = call
			}
			if escapes(p, pm, src, g, nil) {
				record(x.Pos(), taintRand, path+"."+fn.Name())
			}
		case *ast.RangeStmt:
			if obj, pos, ok := orderLeak(p, node.decl.Body, x); ok {
				kind := taintKind("")
				if isMapRange(p, x) {
					kind = taintMapOrder
				} else if hasGo && isChanRange(p, x) {
					kind = taintGoroutineOrder
				}
				if kind != "" && varEscapes(p, pm, node.decl.Body, obj, g, nil) {
					desc := "map iteration order"
					if kind == taintGoroutineOrder {
						desc = "goroutine completion order (channel fan-in)"
					}
					record(pos, kind, desc)
				}
			}
		case *ast.SelectStmt:
			ready := 0
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready >= 2 {
				record(x.Pos(), taintSelectOrder, "select over multiple channels")
			}
		}
		return true
	})
	return best, found
}

// pointerVerbLit returns the first string-literal argument of call
// containing a %p verb, or nil.
func pointerVerbLit(call *ast.CallExpr) *ast.BasicLit {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "%p") {
			return lit
		}
	}
	return nil
}

// isChanRange reports whether rs ranges over a channel.
func isChanRange(p *Package, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// orderLeak reports whether rs's body appends iteration-ordered data to a
// variable declared before the loop that is not sorted afterwards,
// returning that variable.
func orderLeak(p *Package, body *ast.BlockStmt, rs *ast.RangeStmt) (types.Object, token.Pos, bool) {
	var obj types.Object
	var pos token.Pos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if o, pp := appendTarget(p, as, rs); o != nil {
			obj, pos = o, pp
		}
		return true
	})
	if obj == nil || sortedAfter(p, body, obj, rs.End()) {
		return nil, token.NoPos, false
	}
	return obj, pos, true
}

// parentMap maps every node in a body to its syntactic parent.
type parentMap map[ast.Node]ast.Node

// buildParents records the parent of each node under root.
func buildParents(root ast.Node) parentMap {
	pm := make(parentMap)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// escapes reports whether the value produced at n flows anywhere beyond
// sanitizer calls: a return, an outer structure, a channel, control flow,
// or an argument to a module function. Stdlib calls pass the value through
// (their result is checked instead); telemetry/detrand calls contain it.
// visited guards against assignment cycles; pass nil at entry points.
func escapes(p *Package, pm parentMap, n ast.Node, g *CallGraph, visited map[types.Object]bool) bool {
	if visited == nil {
		visited = make(map[types.Object]bool)
	}
	cur := n
	for depth := 0; depth < 64; depth++ {
		par := pm[cur]
		switch pp := par.(type) {
		case nil:
			return true // top of body with the value still live: be safe
		case *ast.CallExpr:
			if pp.Fun == cur {
				// Method call on the tainted value: result carries it.
				cur = pp
				continue
			}
			callee := pkgFunc(p.Info, pp)
			if callee == nil || callee.Pkg() == nil {
				// Builtin (append, len) or call through a value: the
				// result derives from the argument.
				cur = pp
				continue
			}
			if isSanitizerPkg(callee.Pkg().Path()) {
				return false
			}
			if _, inModule := g.funcs[funcID(callee)]; inModule {
				// Handed to a module function whose parameter flow we do
				// not track: conservatively an escape.
				return true
			}
			// Writer-shaped stdlib calls (Fprintf, Builder.WriteString,
			// Encoder.Encode, …) push the argument into a stream even
			// though the call's own result is discarded.
			if fprintFuncs[callee.FullName()] {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && emitWriters[callee.Name()] {
				return true
			}
			// Stdlib pass-through: taint rides the result.
			cur = pp
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.UnaryExpr, *ast.BinaryExpr,
			*ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.TypeAssertExpr,
			*ast.KeyValueExpr, *ast.CompositeLit:
			cur = par
		case *ast.AssignStmt:
			return assignEscapes(p, pm, pp, cur, g, visited)
		case *ast.ValueSpec:
			for _, name := range pp.Names {
				if name.Name == "_" {
					continue
				}
				if obj := p.Info.Defs[name]; obj != nil {
					if varEscapes(p, pm, topBlock(pm, pp), obj, g, visited) {
						return true
					}
				}
			}
			return false
		case *ast.ReturnStmt, *ast.SendStmt:
			return true
		case *ast.ExprStmt:
			return false // value discarded
		case *ast.DeferStmt, *ast.GoStmt:
			return false // the inner CallExpr case already classified args
		default:
			// Conditions, range sources, switch tags, index positions …
			// the value steers execution: treat as escaping.
			return true
		}
	}
	return true
}

// assignEscapes resolves an assignment whose right side carries taint.
func assignEscapes(p *Package, pm parentMap, as *ast.AssignStmt, from ast.Node, g *CallGraph, visited map[types.Object]bool) bool {
	targets := as.Lhs
	if len(as.Lhs) == len(as.Rhs) {
		// Match the Rhs operand that contains the tainted node.
		for i, rhs := range as.Rhs {
			if rhs.Pos() <= from.Pos() && from.Pos() < rhs.End() {
				targets = as.Lhs[i : i+1]
				break
			}
		}
	}
	for _, lhs := range targets {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return true // field, index or deref target: leaves the function's hands
		}
		if id.Name == "_" {
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if varEscapes(p, pm, topBlock(pm, as), obj, g, visited) {
			return true
		}
	}
	return false
}

// topBlock walks up to the outermost body block containing n.
func topBlock(pm parentMap, n ast.Node) ast.Node {
	top := n
	for cur := n; cur != nil; cur = pm[cur] {
		top = cur
	}
	return top
}

// varEscapes reports whether any read of obj escapes. Assignment targets
// are skipped (writing back into the variable is not a read), and the
// shared visited set breaks self-feeding cycles like x = append(x, …).
func varEscapes(p *Package, pm parentMap, body ast.Node, obj types.Object, g *CallGraph, visited map[types.Object]bool) bool {
	if visited == nil {
		visited = make(map[types.Object]bool)
	}
	if visited[obj] {
		return false
	}
	visited[obj] = true
	leak := false
	ast.Inspect(body, func(n ast.Node) bool {
		if leak {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != obj {
			return true
		}
		if as, ok := pm[id].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == ast.Node(id) {
					return true // write target, not a read
				}
			}
		}
		if escapes(p, pm, id, g, visited) {
			leak = true
		}
		return !leak
	})
	return leak
}
