// Error-hygiene analyzer: err-ignored.
//
// PYTHIA's pipeline stages (profiling → metadata → generation → downstream
// corpora) pass failures up as errors; a silently dropped error turns a
// broken stage into a subtly wrong corpus. This analyzer flags the two
// ways Go lets an error vanish — a bare call statement and an explicit
// blank assignment — unless the callee is on a small allowlist of
// can't-meaningfully-fail functions.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// IgnoredErrorAnalyzer flags discarded error results.
func IgnoredErrorAnalyzer() *Analyzer {
	return &Analyzer{
		ID:  "err-ignored",
		Doc: "discarded error return (`_ =` or bare call)",
		Run: runIgnoredError,
	}
}

// errAllowlist holds *types.Func full names whose error results may be
// dropped: in-memory writers whose documented contract is a nil error, and
// fmt printing to standard streams.
var errAllowlist = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,

	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
}

// fprintFuncs write to an explicit io.Writer; their errors may be dropped
// only when the writer itself cannot fail (standard streams and in-memory
// buffers).
var fprintFuncs = map[string]bool{
	"fmt.Fprint":     true,
	"fmt.Fprintf":    true,
	"fmt.Fprintln":   true,
	"io.WriteString": true,
}

func runIgnoredError(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		// A node stack mirrors the traversal so each finding knows its
		// innermost enclosing function — the -fix rewrite only applies
		// when that function returns exactly error.
		var nodes []ast.Node
		var encl []*ast.FuncType
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := nodes[len(nodes)-1]
				nodes = nodes[:len(nodes)-1]
				switch top.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					encl = encl[:len(encl)-1]
				}
				return true
			}
			nodes = append(nodes, n)
			switch fn := n.(type) {
			case *ast.FuncDecl:
				encl = append(encl, fn.Type)
			case *ast.FuncLit:
				encl = append(encl, fn.Type)
			}
			var enclosing *ast.FuncType
			if len(encl) > 0 {
				enclosing = encl[len(encl)-1]
			}
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if idx := resultErrIndexes(p.Info, call); len(idx) > 0 && !allowlisted(p, call) {
					out = append(out, Diagnostic{
						Pos:     p.Fset.Position(call.Pos()),
						RuleID:  "err-ignored",
						Message: fmt.Sprintf("result of %s contains an error that is silently dropped; handle it or assign and check it", calleeName(p, call)),
						Fix:     ignoredErrFix(p, enclosing, stmt.Pos(), call.Pos(), call),
					})
				}
			case *ast.AssignStmt:
				out = append(out, blankErrAssigns(p, stmt, enclosing)...)
			}
			return true
		})
	}
	return out
}

// blankErrAssigns flags `_`-discarded error values in an assignment, both
// the multi-result form `v, _ := f()` and the direct form `_ = err`.
func blankErrAssigns(p *Package, as *ast.AssignStmt, enclosing *ast.FuncType) []Diagnostic {
	var out []Diagnostic
	flag := func(pos ast.Node, what string, fix *Fix) {
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(pos.Pos()),
			RuleID:  "err-ignored",
			Message: fmt.Sprintf("error from %s discarded with _; handle it or suppress with a reason", what),
			Fix:     fix,
		})
	}
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || allowlisted(p, call) {
			return nil
		}
		for _, i := range resultErrIndexes(p.Info, call) {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				flag(as.Lhs[i], calleeName(p, call), nil)
			}
		}
		return out
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		rhs := ast.Unparen(as.Rhs[i])
		tv, ok := p.Info.Types[rhs]
		if !ok || tv.Type == nil || !types.Identical(tv.Type, errorType) {
			continue
		}
		if call, isCall := rhs.(*ast.CallExpr); isCall && allowlisted(p, call) {
			continue
		}
		var fix *Fix
		// `_ = f()` with a lone assignment rewrites to an if-check when
		// f returns exactly one error and the function can propagate it.
		if call, isCall := rhs.(*ast.CallExpr); isCall && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			fix = ignoredErrFix(p, enclosing, as.Pos(), as.Rhs[i].Pos(), call)
		}
		flag(lhs, "expression", fix)
	}
	return out
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// allowlisted reports whether call's dropped error is acceptable.
func allowlisted(p *Package, call *ast.CallExpr) bool {
	fn := pkgFunc(p.Info, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if errAllowlist[full] {
		return true
	}
	if fprintFuncs[full] && len(call.Args) > 0 {
		return safeWriter(p, call.Args[0])
	}
	return false
}

// safeWriter reports whether the writer expression is a standard stream or
// an in-memory buffer, none of which produce meaningful write errors.
func safeWriter(p *Package, w ast.Expr) bool {
	w = ast.Unparen(w)
	if tv, ok := p.Info.Types[w]; ok && tv.Type != nil {
		switch tv.Type.String() {
		case "*strings.Builder", "*bytes.Buffer":
			return true
		}
	}
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			return obj.Name() == "Stdout" || obj.Name() == "Stderr"
		}
	}
	return false
}

// calleeName renders the called function for a message.
func calleeName(p *Package, call *ast.CallExpr) string {
	if fn := pkgFunc(p.Info, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}
