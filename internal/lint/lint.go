// Package lint implements pythia-lint, a repo-specific static-analysis
// pass built only on the standard library's go/ast, go/parser, go/token
// and go/types (no external analysis frameworks, per DESIGN.md).
//
// PYTHIA's contract is reproducibility: Algorithm 1 must emit the same
// (a-query, evidence, text) triples for the same table and seed, or every
// downstream corpus silently drifts. The analyzers here machine-check the
// invariants that protect that contract. The original five are syntactic,
// per-file passes:
//
//	det-map-iter      map iteration feeding ordered output without a sort
//	det-global-rand   package-global math/rand calls (unseeded randomness)
//	err-ignored       discarded error returns (`_ =` or bare calls)
//	conc-loop-capture goroutines capturing loop variables by reference
//	conc-lock-copy    sync locks passed or returned by value
//
// On top of them sits a whole-program layer built on a module-wide call
// graph over every loaded package (callgraph.go):
//
//	det-flow              interprocedural taint from nondeterminism
//	                      sources to generation/serialization sinks
//	tel-metric-registry   telemetry metric names must match the declared
//	                      registry and naming convention
//	conc-lock-across-call mutex held across potentially blocking ops
//	err-limit-propagate   errLimitReached must propagate, not be absorbed
//
// Findings print as "file:line:col: [rule-id] message". A finding can be
// suppressed with a comment on the same line or the line directly above:
//
//	//lint:ignore rule-id reason
//
// The reason is mandatory; an ignore comment without one does not
// suppress. A subset of findings carry mechanical fixes applied by
// pythia-lint -fix (see fix.go); known findings can be waived en masse
// through a committed baseline file (see baseline.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	RuleID  string
	Message string

	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding. Applied by pythia-lint -fix; see fix.go.
	Fix *Fix
}

// key identifies a finding for dedup and suppression independent of any
// attached fix.
type diagKey struct {
	pos     token.Position
	ruleID  string
	message string
}

func (d Diagnostic) key() diagKey {
	return diagKey{pos: d.Pos, ruleID: d.RuleID, message: d.Message}
}

// String renders the canonical "file:line:col: [rule-id] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.RuleID, d.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path (module-relative) or directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one named rule. Per-file rules set Run; whole-program rules
// set RunModule instead and receive every loaded package at once (they see
// exactly the packages the invocation loaded — running them on a subtree
// analyzes that subtree's bodies only).
type Analyzer struct {
	ID        string // stable rule ID used in reports and ignore comments
	Doc       string // one-line description
	Run       func(p *Package) []Diagnostic
	RunModule func(pkgs []*Package) []Diagnostic
}

// Analyzers returns every rule in the fixed, documented order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIterAnalyzer(),
		GlobalRandAnalyzer(),
		IgnoredErrorAnalyzer(),
		LoopCaptureAnalyzer(),
		LockCopyAnalyzer(),
		DetFlowAnalyzer(),
		MetricRegistryAnalyzer(),
		LockAcrossCallAnalyzer(),
		LimitPropagateAnalyzer(),
	}
}

// AnalyzerByID returns the rule with the given ID, or nil.
func AnalyzerByID(id string) *Analyzer {
	for _, a := range Analyzers() {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// Run applies the analyzers to each package (and the module-wide ones to
// the package set as a whole), drops suppressed findings and returns the
// remainder sorted by position then rule ID, so output is stable across
// runs (the linter holds itself to its own determinism bar).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	seen := make(map[diagKey]bool)
	// One merged suppression set: module-wide rules report positions in
	// any loaded package, so waivers must resolve across the whole set.
	sup := make(suppressionSet)
	for _, p := range pkgs {
		sup.collect(p)
	}
	add := func(diags []Diagnostic) {
		for _, d := range diags {
			// Nested constructs can attribute one defect to several
			// enclosing nodes; report each finding once.
			if k := d.key(); !sup.covers(d) && !seen[k] {
				seen[k] = true
				out = append(out, d)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			add(a.RunModule(pkgs))
			continue
		}
		for _, p := range pkgs {
			add(a.Run(p))
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by file, line, column, then rule ID —
// the canonical report order.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.RuleID < b.RuleID
	})
}

// isTestFile reports whether the file containing pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pkgFunc resolves a call expression to the *types.Func it invokes, or nil
// for calls through variables, conversions and builtins.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// resultErrIndexes returns the positions of error-typed results in a call's
// result tuple (nil if none). A single-value call is treated as a 1-tuple.
func resultErrIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	var idx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				idx = append(idx, i)
			}
		}
	default:
		if t != nil && types.Identical(t, errorType) {
			idx = append(idx, 0)
		}
	}
	return idx
}
