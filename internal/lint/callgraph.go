// Module-wide call graph. The whole-program rules (det-flow,
// err-limit-propagate) reason across package boundaries, so they need to
// know, for every function with a body in the loaded set, which functions
// it statically calls.
//
// Packages are type-checked independently (each top-level check may
// re-resolve shared imports), so *types.Func object identity does not hold
// across packages. Functions are therefore keyed by a stable textual ID —
// "pkgpath.Name" for functions, "pkgpath.(Recv).Name" for methods — which
// is identical no matter which package's type info produced it.
//
// The graph is a static under-approximation: calls through function
// values, interface methods and reflection are not resolved. For the
// invariants checked here that is the safe direction — an unresolved call
// cannot manufacture a false finding, and the repo's generation paths call
// concrete functions.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncID is the stable cross-package identifier of a function or method.
type FuncID string

// funcID derives the stable ID for fn. Functions outside any package
// (builtins) return "".
func funcID(fn *types.Func) FuncID {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		name := recv.String()
		if named, ok := types.Unalias(recv).(*types.Named); ok {
			name = named.Obj().Name()
		}
		return FuncID(fn.Pkg().Path() + ".(" + name + ")." + fn.Name())
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// pkgPathOf returns the package path component of id.
func (id FuncID) pkgPath() string {
	s := string(id)
	if i := strings.LastIndex(s, ".("); i >= 0 {
		return s[:i]
	}
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[:i]
	}
	return s
}

// shortName renders id without the package directory prefix, for messages:
// "pkg.Func" or "pkg.(Recv).Method".
func (id FuncID) shortName() string {
	path := id.pkgPath()
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	return base + strings.TrimPrefix(string(id), path)
}

// callSite is one resolved static call inside a function body.
type callSite struct {
	callee FuncID
	pos    token.Pos
	call   *ast.CallExpr
}

// funcNode is one function with a body in the loaded package set.
type funcNode struct {
	id    FuncID
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	calls []callSite
}

// CallGraph indexes every function body in the loaded packages and its
// resolved static call sites.
type CallGraph struct {
	funcs map[FuncID]*funcNode
	ids   []FuncID // sorted, for deterministic iteration
}

// buildCallGraph constructs the graph over pkgs. When two loaded packages
// declare the same ID (an in-package test variant re-checking the same
// files), the first in package-sorted order wins; bodies are identical.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{funcs: make(map[FuncID]*funcNode)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				id := funcID(fn)
				if id == "" {
					continue
				}
				if _, dup := g.funcs[id]; dup {
					continue
				}
				node := &funcNode{id: id, fn: fn, decl: fd, pkg: p}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := pkgFunc(p.Info, call)
					if cid := funcID(callee); cid != "" {
						node.calls = append(node.calls, callSite{callee: cid, pos: call.Pos(), call: call})
					}
					return true
				})
				g.funcs[id] = node
			}
		}
	}
	for id := range g.funcs {
		g.ids = append(g.ids, id)
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	return g
}
