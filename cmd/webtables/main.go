// Command webtables generates the synthetic WebTables-style corpus behind
// PYTHIA's weak supervision and reports its statistics, optionally dumping
// tables and annotator labels.
//
// Usage:
//
//	webtables -n 500000 [-stats] [-dump 5] [-labels] [-workers 0]
//	          [-metrics metrics.json] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/telemetry"
	"repro/internal/vocab"
)

func main() {
	n := flag.Int("n", 10000, "number of tables to generate")
	stats := flag.Bool("stats", true, "print corpus statistics")
	dump := flag.Int("dump", 0, "print the first N tables")
	labels := flag.Bool("labels", false, "run the annotator functions and print weak-label statistics")
	seed := flag.Int64("seed", 42, "corpus seed")
	workers := flag.Int("workers", 0, "worker pool size for generation and labelling (0 = GOMAXPROCS)")
	metricsPath := flag.String("metrics", "", "write a telemetry snapshot (JSON) to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		dbg, err := telemetry.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webtables:", err)
			os.Exit(1)
		}
		//lint:ignore err-ignored closing the debug listener at process exit; nothing can act on its error
		defer func() { _ = dbg.Close() }()
		fmt.Fprintf(os.Stderr, "webtables: pprof and /debug/vars on http://%s/debug/pprof\n", dbg.Addr())
	}
	defer func() {
		if *metricsPath == "" {
			return
		}
		if err := telemetry.Default().WriteSnapshot(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "webtables:", err)
		}
	}()

	opts := corpus.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	g := corpus.NewGenerator(vocab.Default(), opts)

	start := time.Now()
	if *stats {
		tabs := g.Tables(*n)
		st := corpus.Summarize(tabs)
		fmt.Printf("generated %d tables in %s\n", st.Tables, time.Since(start).Round(time.Millisecond))
		fmt.Printf("columns: %d (junk: %d)  rows: %d\n", st.Columns, st.JunkColumns, st.Rows)
		var domains []string
		for d := range st.Domains {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		fmt.Println("domains:")
		for _, d := range domains {
			fmt.Printf("  %-14s %d\n", d, st.Domains[d])
		}
	}

	for i := 0; i < *dump; i++ {
		t := g.Table(i)
		fmt.Printf("\n%s (%s)\n  %s\n", t.Name, t.Domain, strings.Join(t.Header, " | "))
		for _, row := range t.Rows {
			fmt.Printf("  %s\n", strings.Join(row, " | "))
		}
	}

	if *labels {
		annotators := annotate.All(kb.BuildDefault())
		var pairs, positives, covered int
		labelCounts := map[string]int{}
		start := time.Now()
		labelled := annotate.LabelTables(annotators, *n, *workers, func(i int) (string, []string, [][]string) {
			t := g.Table(i)
			return t.Name, t.Header, t.Rows
		})
		for _, tablePairs := range labelled {
			for _, pe := range tablePairs {
				pairs++
				if pe.Covered {
					covered++
				}
				if pe.Label != "" {
					positives++
					labelCounts[pe.Label]++
				}
			}
		}
		fmt.Printf("\nweak supervision over %d tables in %s:\n", *n, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  pairs: %d  covered: %d  positive: %d (%.2f%%)\n",
			pairs, covered, positives, 100*float64(positives)/float64(pairs))
		type lc struct {
			label string
			n     int
		}
		var top []lc
		for l, c := range labelCounts {
			top = append(top, lc{l, c})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
		if len(top) > 15 {
			top = top[:15]
		}
		fmt.Println("  top labels:")
		for _, t := range top {
			fmt.Printf("    %-20s %d\n", t.label, t.n)
		}
	}
	if !*stats && *dump == 0 && !*labels {
		fmt.Fprintln(os.Stderr, "nothing to do; pass -stats, -dump or -labels")
	}
}
