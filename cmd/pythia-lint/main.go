// Command pythia-lint runs the repo's static-analysis pass (internal/lint)
// over one or more package directories and reports violations of the
// determinism, error-hygiene and concurrency invariants that keep PYTHIA's
// example generation reproducible.
//
// Usage:
//
//	pythia-lint [flags] [pattern ...]
//
// Patterns are directories or recursive dir/... forms; the default is
// ./... from the current directory. testdata, vendor and hidden
// directories are skipped, matching the go tool's conventions.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors — so CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pythia-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	includeTests := fs.Bool("tests", false, "also lint _test.go files")
	listRules := fs.Bool("list", false, "list rule IDs and exit")
	only := fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pythia-lint [-tests] [-rules id,id] [-list] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.ID, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, id := range strings.Split(*only, ",") {
			a := lint.AnalyzerByID(strings.TrimSpace(id))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pythia-lint: unknown rule %q (try -list)\n", id)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-lint:", err)
		return 2
	}
	loader.IncludeTests = *includeTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-lint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "pythia-lint: no packages matched")
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pythia-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
