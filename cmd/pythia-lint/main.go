// Command pythia-lint runs the repo's static-analysis pass (internal/lint)
// over one or more package directories and reports violations of the
// determinism, error-hygiene, concurrency and telemetry invariants that
// keep PYTHIA's example generation reproducible.
//
// Usage:
//
//	pythia-lint [flags] [pattern ...]
//
// Patterns are directories or recursive dir/... forms; the default is
// ./... from the current directory. testdata, vendor and hidden
// directories are skipped, matching the go tool's conventions. A pattern
// matching no packages is an error, not a silent pass.
//
// Modes beyond plain reporting:
//
//	-json                 machine-readable report on stdout
//	-baseline file        suppress findings recorded in a committed baseline;
//	                      only new findings fail the run
//	-write-baseline file  snapshot current findings as the new baseline
//	-fix                  rewrite the fixable subset in place and report
//	                      what remains
//
// Exit status: 0 when clean (or all findings baselined), 1 when new
// findings were reported, 2 on usage or load errors — so CI can gate on
// it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Rule      string `json:"rule"`
	Message   string `json:"message"`
	Fixable   bool   `json:"fixable"`
	Baselined bool   `json:"baselined,omitempty"`
}

// jsonReport is the -json output document.
type jsonReport struct {
	Module    string        `json:"module,omitempty"`
	Packages  int           `json:"packages"`
	Findings  []jsonFinding `json:"findings"`
	Baselined int           `json:"baselined"`
	Fixed     int           `json:"fixed,omitempty"`
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("pythia-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	includeTests := fs.Bool("tests", false, "also lint _test.go files")
	listRules := fs.Bool("list", false, "list rule IDs and exit")
	only := fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
	asJSON := fs.Bool("json", false, "emit a JSON report on stdout")
	doFix := fs.Bool("fix", false, "rewrite fixable findings in place")
	baselinePath := fs.String("baseline", "", "baseline file; recorded findings do not fail the run")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pythia-lint [-tests] [-rules id,id] [-json] [-fix] [-baseline file] [-write-baseline file] [-list] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listRules {
		for _, a := range lint.Analyzers() {
			//lint:ignore err-ignored best-effort CLI output; a failed stdout write has nowhere to report
			fmt.Fprintf(stdout, "%-22s %s\n", a.ID, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, id := range strings.Split(*only, ",") {
			a := lint.AnalyzerByID(strings.TrimSpace(id))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pythia-lint: unknown rule %q (try -list)\n", id)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-lint:", err)
		return 2
	}
	loader.IncludeTests = *includeTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-lint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "pythia-lint: no packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}
	root := loader.ModuleRoot()
	if root == "" {
		//lint:ignore err-ignored Abs(".") fails only when getwd fails; "" falls back to absolute paths
		root, _ = filepath.Abs(".")
	}

	diags := lint.Run(pkgs, analyzers)

	fixed := 0
	if *doFix {
		res, err := lint.ApplyFixes(pkgs, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-lint:", err)
			return 2
		}
		if err := res.WriteFixes(); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-lint:", err)
			return 2
		}
		var files []string
		for f := range res.Files {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			fixed += res.Applied[f]
			fmt.Fprintf(os.Stderr, "pythia-lint: fixed %d finding(s) in %s\n", res.Applied[f], f)
		}
		// Re-lint the rewritten tree so the report reflects what remains.
		if len(res.Files) > 0 {
			reloader, err := lint.NewLoader(".")
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-lint:", err)
				return 2
			}
			reloader.IncludeTests = *includeTests
			pkgs, err = reloader.Load(patterns...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-lint:", err)
				return 2
			}
			diags = lint.Run(pkgs, analyzers)
		}
	}

	if *writeBaseline != "" {
		if err := lint.NewBaseline(diags, root).Write(*writeBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-lint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "pythia-lint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	fresh, baselined := diags, []lint.Diagnostic(nil)
	if *baselinePath != "" {
		base, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-lint:", err)
			return 2
		}
		fresh, baselined = base.Filter(diags, root)
	}

	if *asJSON {
		report := jsonReport{Packages: len(pkgs), Findings: []jsonFinding{}, Baselined: len(baselined), Fixed: fixed}
		if len(pkgs) > 0 {
			report.Module = modulePathOf(pkgs)
		}
		for _, d := range fresh {
			report.Findings = append(report.Findings, finding(d, root, false))
		}
		for _, d := range baselined {
			report.Findings = append(report.Findings, finding(d, root, true))
		}
		sort.Slice(report.Findings, func(i, j int) bool {
			a, b := report.Findings[i], report.Findings[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Col != b.Col {
				return a.Col < b.Col
			}
			return a.Rule < b.Rule
		})
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-lint:", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			//lint:ignore err-ignored best-effort CLI output; a failed stdout write has nowhere to report
			fmt.Fprintln(stdout, d)
		}
	}

	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "pythia-lint: %d new finding(s) in %d package(s)", len(fresh), len(pkgs))
		if len(baselined) > 0 {
			fmt.Fprintf(os.Stderr, " (%d baselined)", len(baselined))
		}
		fmt.Fprintln(os.Stderr)
		return 1
	}
	return 0
}

// finding converts a diagnostic for the JSON report.
func finding(d lint.Diagnostic, root string, baselined bool) jsonFinding {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return jsonFinding{
		File:      filepath.ToSlash(file),
		Line:      d.Pos.Line,
		Col:       d.Pos.Column,
		Rule:      d.RuleID,
		Message:   d.Message,
		Fixable:   d.Fix != nil,
		Baselined: baselined,
	}
}

// modulePathOf reports the shared module path prefix of the loaded
// packages, e.g. "repro" for repro/internal/lint.
func modulePathOf(pkgs []*lint.Package) string {
	p := pkgs[0].Path
	if i := strings.Index(p, "/"); i > 0 {
		return p[:i]
	}
	return p
}
