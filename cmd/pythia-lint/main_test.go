package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const fixtures = "../../internal/lint/testdata/src"

func TestRunExitCodes(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"."}, &buf); code != 0 {
		t.Errorf("clean package: exit %d, want 0 (output: %s)", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{filepath.Join(fixtures, "errignored")}, &buf); code != 1 {
		t.Errorf("fixture with findings: exit %d, want 1", code)
	}
	if buf.Len() == 0 {
		t.Error("findings run produced no output")
	}
	if code := run([]string{"-rules", "no-such-rule", "."}, &buf); code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
}

// TestRunNoMatchPattern pins the satellite contract: a pattern matching
// no packages exits 2 and names the pattern.
func TestRunNoMatchPattern(t *testing.T) {
	var buf bytes.Buffer
	empty := t.TempDir()
	if code := run([]string{empty + "/..."}, &buf); code != 2 {
		t.Errorf("zero-match pattern: exit %d, want 2", code)
	}
}

func TestRunJSONReport(t *testing.T) {
	var buf bytes.Buffer
	code := run([]string{"-json", filepath.Join(fixtures, "errignored")}, &buf)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var report struct {
		Packages int `json:"packages"`
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"findings"`
		Baselined int `json:"baselined"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Packages == 0 || len(report.Findings) == 0 {
		t.Errorf("report = %+v, want packages and findings", report)
	}
	for _, f := range report.Findings {
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q should be module-relative", f.File)
		}
	}
}

// TestBaselineRoundTrip writes a baseline from a findings-heavy fixture,
// then re-runs against it: every finding is absorbed and the run passes.
func TestBaselineRoundTrip(t *testing.T) {
	dir := filepath.Join(fixtures, "errignored")
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	if code := run([]string{"-write-baseline", baseline, dir}, &buf); code != 0 {
		t.Fatalf("write-baseline: exit %d, want 0", code)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := run([]string{"-baseline", baseline, dir}, &buf); code != 0 {
		t.Errorf("baselined run: exit %d, want 0 (output: %s)", code, buf.String())
	}
	// The baseline must not leak across fixtures: a different package's
	// findings are still new.
	if code := run([]string{"-baseline", baseline, filepath.Join(fixtures, "detmapiter")}, &buf); code != 1 {
		t.Errorf("unbaselined findings: exit %d, want 1", code)
	}
}

// TestFixWritesInPlace copies a fixable file into a scratch dir, runs
// -fix on it, and checks the rewrite landed and the re-run is clean.
func TestFixWritesInPlace(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

import "os"

func clean(p string) error {
	os.Remove(p)
	return nil
}
`
	path := filepath.Join(dir, "scratch.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code := run([]string{"-fix", dir}, &buf); code != 0 {
		t.Fatalf("-fix run: exit %d, want 0 after rewriting (output: %s)", code, buf.String())
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fixed, []byte("if err := os.Remove(p); err != nil {")) {
		t.Errorf("fix not applied:\n%s", fixed)
	}
	buf.Reset()
	if code := run([]string{dir}, &buf); code != 0 {
		t.Errorf("re-lint of fixed dir: exit %d, want 0 (output: %s)", code, buf.String())
	}
}
