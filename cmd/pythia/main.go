// Command pythia is the end-to-end CLI: profile a table, discover its
// ambiguity metadata, and generate data-ambiguous training examples.
//
// Usage:
//
//	pythia profile  (-in table.csv | -dataset Basket)
//	pythia train    -save model.json [-method schema|data] [-tables N] [-workers N]
//	pythia metadata (-in table.csv | -dataset Basket) [-method ulabel|schema|data] [-tables N]
//	                [-workers N] [-model FILE] [-save FILE]
//	pythia generate (-in table.csv | -dataset Basket) [-method ...] [-mode textgen|templates]
//	                [-structures attribute,row,full] [-match both|contradictory|uniform]
//	                [-questions] [-max N] [-json] [-workers N] [-model FILE] [-save FILE]
//	                [-out DIR [-checkpoint-every N] [-shard-size N] [-resume]]
//	pythia datasets
//
// The ulabel method needs no training and is the default; schema/data
// train the corresponding metadata model on a synthetic web-table corpus
// first (-tables controls its size). `pythia train -save` persists the
// trained model as a versioned artifact; -model on metadata/generate
// loads it back instead of retraining (an artifact whose recorded
// training fingerprint no longer matches the flags is rejected and the
// command retrains). -workers shards generation and model training
// across a worker pool (0 = GOMAXPROCS) with byte-identical output at
// every worker count.
//
// Generation streams: examples are printed (or written to -out shards) as
// they clear the deterministic merge, so memory stays flat at any output
// size. With -out, a manifest checkpoint every -checkpoint-every examples
// makes the run resumable — re-invoke with the same arguments plus -resume
// to skip completed work and finish to byte-identical total output.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/annotate"
	"repro/internal/artifact"
	"repro/internal/corpus"
	"repro/internal/data"
	"repro/internal/kb"
	"repro/internal/model"
	"repro/internal/profiling"
	"repro/internal/pythia"
	"repro/internal/relation"
	"repro/internal/sqlengine"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// obsFlags registers the shared observability flags on a subcommand's
// FlagSet. The returned start function runs after parsing: it brings up
// the -pprof debug server (if requested) and returns the finish function
// that writes the -metrics snapshot at command exit.
func obsFlags(fs *flag.FlagSet) func() (func(), error) {
	metrics := fs.String("metrics", "", "write a telemetry snapshot (JSON) to this file at exit")
	pprof := fs.String("pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	return func() (func(), error) {
		var dbg *telemetry.DebugServer
		if *pprof != "" {
			var err error
			if dbg, err = telemetry.Serve(*pprof); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "pythia: pprof and /debug/vars on http://%s/debug/pprof\n", dbg.Addr())
		}
		path := *metrics
		return func() {
			if dbg != nil {
				//lint:ignore err-ignored closing the debug listener at process exit; nothing can act on its error
				_ = dbg.Close()
			}
			if path == "" {
				return
			}
			if err := telemetry.Default().WriteSnapshot(path); err != nil {
				fmt.Fprintln(os.Stderr, "pythia:", err)
			}
		}, nil
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "metadata":
		err = cmdMetadata(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "sql":
		err = cmdSQL(os.Args[2:])
	case "datasets":
		for _, n := range data.Names() {
			fmt.Println(n)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pythia: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pythia profile  (-in table.csv | -dataset NAME)
  pythia train    -save model.json [-method schema|data] [-tables N] [-workers N]
  pythia metadata (-in table.csv | -dataset NAME) [-method ulabel|schema|data] [-tables N] [-workers N]
                  [-model model.json] [-save model.json]
  pythia generate (-in table.csv | -dataset NAME) [-method ulabel|schema|data] [-mode textgen|templates]
                  [-structures attribute,row,full] [-match both|contradictory|uniform]
                  [-questions] [-max N] [-json] [-tables N] [-workers N]
                  [-model model.json] [-save model.json]
                  [-out DIR [-checkpoint-every N] [-shard-size N] [-resume]]
  pythia sql      (-in table.csv | -dataset NAME) ["QUERY" | -i]
  pythia datasets

-model loads a trained model artifact instead of retraining (a stale or
version-skewed artifact falls back to training); -save persists the
trained model for future -model runs.

profile, train, metadata, generate and sql also accept:
  -metrics FILE   write a telemetry snapshot (JSON) at exit
  -pprof ADDR     serve net/http/pprof and /debug/vars for live inspection`)
}

// cmdSQL runs SQL against a loaded table: one query from the arguments, or
// an interactive prompt with -i (the "interactive version" the paper's
// conclusion sketches).
func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	load := tableFlags(fs)
	obs := obsFlags(fs)
	interactive := fs.Bool("i", false, "interactive prompt (read queries from stdin)")
	limit := fs.Int("print", 20, "max rows to print per result")
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obs()
	if err != nil {
		return err
	}
	defer finish()
	t, err := load()
	if err != nil {
		return err
	}
	e := sqlengine.NewEngine()
	e.Register(t)
	run := func(q string) {
		res, err := e.Query(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Println(strings.Join(res.Schema.Names(), " | "))
		for i, row := range res.Rows {
			if i >= *limit {
				fmt.Printf("… %d more rows\n", res.NumRows()-i)
				break
			}
			parts := make([]string, len(row))
			for c, v := range row {
				parts[c] = v.Format()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		fmt.Fprintf(os.Stderr, "(%d rows)\n", res.NumRows())
	}
	if !*interactive {
		if fs.NArg() != 1 {
			return fmt.Errorf("pass exactly one query, or -i for interactive mode")
		}
		run(fs.Arg(0))
		return nil
	}
	fmt.Fprintf(os.Stderr, "table %s registered; enter SQL, empty line to quit\n", t.Name)
	sc := bufio.NewScanner(os.Stdin)
	// The default 64KB token limit kills the REPL on one long generated
	// query; give it room and name the limit if it is still exceeded.
	const maxQueryLine = 4 << 20
	sc.Buffer(make([]byte, 0, 64*1024), maxQueryLine)
	for {
		fmt.Fprint(os.Stderr, "pythia> ")
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				if errors.Is(err, bufio.ErrTooLong) {
					return fmt.Errorf("query line exceeds the %d-byte limit: %w", maxQueryLine, err)
				}
				return fmt.Errorf("reading query: %w", err)
			}
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			return nil
		}
		run(line)
	}
}

// tableFlags adds the shared input flags and returns a loader.
func tableFlags(fs *flag.FlagSet) func() (*relation.Table, error) {
	in := fs.String("in", "", "CSV file with a header row")
	dataset := fs.String("dataset", "", "built-in dataset name (see `pythia datasets`)")
	return func() (*relation.Table, error) {
		switch {
		case *in != "" && *dataset != "":
			return nil, fmt.Errorf("use either -in or -dataset, not both")
		case *in != "":
			f, err := os.Open(*in)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return relation.ReadCSV(tableNameFromPath(*in), f)
		case *dataset != "":
			d, err := data.Load(*dataset)
			if err != nil {
				return nil, err
			}
			return d.Table, nil
		default:
			return nil, fmt.Errorf("missing -in or -dataset")
		}
	}
}

// tableNameFromPath derives a table name from a CSV path: the base file
// name with a case-insensitive .csv extension stripped. filepath.Base
// handles the platform's separators, so "data\Table.Csv" on Windows and
// "data/table.csv" on Unix both yield a clean name instead of a
// hand-rolled '/'-split leaving separators or extensions behind.
func tableNameFromPath(path string) string {
	name := filepath.Base(path)
	if ext := filepath.Ext(name); strings.EqualFold(ext, ".csv") {
		name = name[:len(name)-len(ext)]
	}
	return name
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	load := tableFlags(fs)
	obs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obs()
	if err != nil {
		return err
	}
	defer finish()
	t, err := load()
	if err != nil {
		return err
	}
	p, err := profiling.ProfileTable(t)
	if err != nil {
		return err
	}
	fmt.Printf("table %s: %d rows, %d columns\n", t.Name, t.NumRows(), t.NumCols())
	fmt.Printf("primary key: %v\n", p.PrimaryKey)
	fmt.Printf("candidate keys: %v\n", p.CandidateKeys)
	fmt.Println("columns:")
	for _, st := range p.Columns {
		fmt.Printf("  %-24s %-7s distinct=%-5d nulls=%-4d min=%-12s max=%-12s unique=%v\n",
			st.Name, st.Kind, st.Distinct, st.Nulls, st.Min.Format(), st.Max.Format(), st.Unique)
	}
	return nil
}

// buildPredictor resolves -method into a Predictor, training if needed.
// workers sizes the corpus/annotation worker pool for the trained methods
// (0 = GOMAXPROCS); training output is identical at every worker count.
//
// modelPath, when set, loads a previously saved model artifact instead of
// retraining — the expected fingerprint is derived from the same training
// configuration the flags would train with, so an artifact trained under
// different flags (or a different method) is rejected as stale and the
// command falls back to training. savePath persists the freshly trained
// model for future runs.
func buildPredictor(method string, tables, workers int, modelPath, savePath string) (model.Predictor, error) {
	knowledge := kb.BuildDefault()
	switch method {
	case "ulabel":
		if modelPath != "" || savePath != "" {
			return nil, fmt.Errorf("-model/-save need a trained method (schema or data); ulabel trains nothing")
		}
		return model.NewULabel(knowledge), nil
	case "schema", "data":
		cfg := model.DefaultSchemaConfig()
		name := "Schema"
		if method == "data" {
			cfg = model.DefaultDataConfig()
			name = "Data"
		}
		if tables > 0 {
			cfg.Tables = tables
		}
		cfg.Pretrain = knowledge.DefinitionBags()
		cfg.Workers = workers
		fp := artifact.ModelFingerprint(method, cfg)
		if modelPath != "" {
			m, err := artifact.LoadModel(modelPath, fp)
			switch {
			case err == nil:
				fmt.Fprintf(os.Stderr, "loaded %s model artifact from %s\n", name, modelPath)
				return m, nil
			case artifact.IsMismatch(err):
				fmt.Fprintf(os.Stderr, "pythia: %v; retraining\n", err)
			default:
				return nil, err
			}
		}
		fmt.Fprintf(os.Stderr, "training %s model on %d synthetic web tables…\n", name, cfg.Tables)
		m, err := model.Train(name, corpus.NewDefaultGenerator(), annotate.All(knowledge), cfg)
		if err != nil {
			return nil, err
		}
		if savePath != "" {
			if err := artifact.SaveModel(savePath, m, fp); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "saved %s model artifact -> %s\n", name, savePath)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("unknown method %q (want ulabel, schema or data)", method)
	}
}

// modelFlags adds the artifact load/save flags shared by the commands that
// build a predictor.
func modelFlags(fs *flag.FlagSet) (load *string, save *string) {
	load = fs.String("model", "", "load a trained model artifact instead of retraining (stale artifacts retrain)")
	save = fs.String("save", "", "write the trained model artifact to this file")
	return load, save
}

// cmdTrain trains a metadata model and saves it as an artifact — the
// cold-start killer: later metadata/generate/serve invocations load the
// artifact in milliseconds instead of re-deriving the corpus and training
// from scratch.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	obs := obsFlags(fs)
	method := fs.String("method", "schema", "trained metadata method: schema or data")
	tables := fs.Int("tables", 0, "training corpus size (0 = default)")
	workers := fs.Int("workers", 0, "worker pool size for training (0 = GOMAXPROCS)")
	save := fs.String("save", "", "write the trained model artifact to this file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obs()
	if err != nil {
		return err
	}
	defer finish()
	if *save == "" {
		return fmt.Errorf("train: missing -save FILE")
	}
	if *method != "schema" && *method != "data" {
		return fmt.Errorf("train: method %q trains nothing (want schema or data)", *method)
	}
	_, err = buildPredictor(*method, *tables, *workers, "", *save)
	return err
}

func cmdMetadata(args []string) error {
	fs := flag.NewFlagSet("metadata", flag.ExitOnError)
	load := tableFlags(fs)
	obs := obsFlags(fs)
	method := fs.String("method", "ulabel", "metadata method: ulabel, schema or data")
	tables := fs.Int("tables", 0, "training corpus size for schema/data (0 = default)")
	workers := fs.Int("workers", 0, "worker pool size for training (0 = GOMAXPROCS)")
	modelPath, savePath := modelFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obs()
	if err != nil {
		return err
	}
	defer finish()
	t, err := load()
	if err != nil {
		return err
	}
	pred, err := buildPredictor(*method, *tables, *workers, *modelPath, *savePath)
	if err != nil {
		return err
	}
	md, err := pythia.Discover(t, pred)
	if err != nil {
		return err
	}
	fmt.Printf("primary key: %v\n", md.Profile.PrimaryKey)
	if len(md.Pairs) == 0 {
		fmt.Println("no ambiguous attribute pairs found")
		return nil
	}
	fmt.Println("ambiguous attribute pairs:")
	for _, p := range md.Pairs {
		fmt.Printf("  (%s, %s) -> %q  score=%.2f corr=%.2f overlap=%.2f\n",
			p.AttrA, p.AttrB, p.Label, p.Score, p.Correlation, p.ValueOverlap)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	load := tableFlags(fs)
	method := fs.String("method", "ulabel", "metadata method: ulabel, schema or data")
	tables := fs.Int("tables", 0, "training corpus size for schema/data (0 = default)")
	modelPath, savePath := modelFlags(fs)
	mode := fs.String("mode", "textgen", "generation mode: textgen or templates")
	structures := fs.String("structures", "attribute,row,full", "comma-separated structures")
	match := fs.String("match", "both", "match types: both, contradictory or uniform")
	questions := fs.Bool("questions", false, "interleave questions with statements")
	max := fs.Int("max", 4, "max evidence rows per a-query (0 = unlimited in template mode)")
	asJSON := fs.Bool("json", false, "emit JSON lines instead of text")
	seed := fs.Int64("seed", 1, "phrasing seed")
	workers := fs.Int("workers", 0, "worker pool size for generation and training (0 = GOMAXPROCS)")
	out := fs.String("out", "", "stream sharded NDJSON into this directory instead of stdout")
	checkpointEvery := fs.Int("checkpoint-every", stream.DefaultCheckpointEvery,
		"examples between resume checkpoints with -out (negative = only at completion)")
	shardSize := fs.Int("shard-size", stream.DefaultShardSize, "examples per -out shard file")
	resume := fs.Bool("resume", false, "continue an interrupted -out run from its last checkpoint (same arguments required)")
	obs := obsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obs()
	if err != nil {
		return err
	}
	defer finish()

	t, err := load()
	if err != nil {
		return err
	}
	pred, err := buildPredictor(*method, *tables, *workers, *modelPath, *savePath)
	if err != nil {
		return err
	}
	md, err := pythia.Discover(t, pred)
	if err != nil {
		return err
	}

	opts := pythia.Options{Questions: *questions, MaxPerQuery: *max, Seed: *seed, Workers: *workers}
	switch *mode {
	case "textgen":
		opts.Mode = pythia.TextGeneration
	case "templates":
		opts.Mode = pythia.Templates
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	for _, s := range strings.Split(*structures, ",") {
		switch strings.TrimSpace(s) {
		case "attribute":
			opts.Structures = append(opts.Structures, pythia.AttributeAmb)
		case "row":
			opts.Structures = append(opts.Structures, pythia.RowAmb)
		case "full":
			opts.Structures = append(opts.Structures, pythia.FullAmb)
		case "":
		default:
			return fmt.Errorf("unknown structure %q", s)
		}
	}
	switch *match {
	case "both":
	case "contradictory":
		opts.Matches = []pythia.Match{pythia.Contradictory}
	case "uniform":
		opts.Matches = []pythia.Match{pythia.Uniform}
	default:
		return fmt.Errorf("unknown match %q", *match)
	}

	g := pythia.NewGenerator(t, md)

	// File streaming: sharded NDJSON with checkpoint/resume. The manifest
	// fingerprint covers the generation options plus the metadata method
	// and corpus size, so a resume with different arguments is refused.
	if *out != "" {
		sink, res, err := stream.Open(stream.Config{
			Dir:             *out,
			Fingerprint:     opts.Fingerprint(t.Name, "method="+*method, fmt.Sprintf("tables=%d", *tables)),
			Seed:            *seed,
			CheckpointEvery: *checkpointEvery,
			ShardSize:       *shardSize,
		}, *resume)
		if err != nil {
			return err
		}
		if res.NextUnit > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d examples already flushed, continuing from unit %d\n",
				len(res.Seen), res.NextUnit)
		}
		if err := g.GenerateStreamFrom(opts, res, sink); err != nil {
			// Keep the last checkpoint as the resume point: close the
			// shard without finalizing the manifest.
			if cerr := sink.Close(); cerr != nil {
				return errors.Join(err, cerr)
			}
			return err
		}
		if err := sink.Finish(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%d examples in %d shards -> %s\n", sink.Examples(), sink.Shards(), *out)
		return nil
	}

	// Stdout streaming: examples print as they clear the merge frontier,
	// so memory stays flat no matter how many are generated.
	enc := json.NewEncoder(os.Stdout)
	count := 0
	err = g.GenerateStream(opts, pythia.SinkFunc(func(ex pythia.Example) error {
		count++
		if *asJSON {
			return enc.Encode(ex)
		}
		fmt.Printf("[%s/%s] %s\n", ex.Structure, ex.Match, ex.Text)
		if len(ex.Evidence) > 0 {
			parts := make([]string, len(ex.Evidence))
			for i, c := range ex.Evidence {
				parts[i] = c.Attr + ":" + c.Value
			}
			fmt.Printf("    evidence: %s\n", strings.Join(parts, " — "))
		}
		fmt.Printf("    query: %s\n", ex.Query)
		return nil
	}))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d examples\n", count)
	return nil
}
