// Command pythia-serve is the multi-tenant generation service: upload CSV
// tables over HTTP, read back their profile and ambiguity metadata, and
// stream generated training examples as NDJSON. One process serves many
// tables concurrently — registrations are snapshot-published by the engine,
// so uploads never stall or corrupt in-flight generate streams — and every
// generate request draws its worker pool from one process-wide budget.
//
// Serve mode (-model boots the metadata predictor from a pythia train
// -save artifact instead of the rule-based default; POST .../append
// ingests a CSV delta incrementally):
//
//	pythia-serve -addr :8080 -budget 8 -max-inflight 64 [-model model.json]
//	curl -X POST --data-binary @basket.csv 'localhost:8080/tables?name=Basket'
//	curl localhost:8080/tables/Basket/profile
//	curl -X POST --data-binary @delta.csv localhost:8080/tables/Basket/append
//	curl -X POST -d '{"workers":4}' localhost:8080/tables/Basket/generate
//
// SIGINT/SIGTERM drain in-flight streams (up to -drain) before exit.
//
// Hammer mode measures throughput and tail latency and writes a JSON
// report; with no -url it self-hosts a fresh server on a loopback port,
// uploads the bundled Basket fixture, and hammers that:
//
//	pythia-serve -hammer -n 64 -c 8 -workers 2 -out BENCH_9.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "serve address")
	maxInflight := flag.Int("max-inflight", serve.DefaultMaxInflight, "max concurrently streaming generate requests; excess gets 429")
	budget := flag.Int("budget", 0, "process-wide generation worker budget (0 = GOMAXPROCS)")
	maxUpload := flag.Int64("max-upload", serve.DefaultMaxUploadBytes, "max CSV upload size in bytes")
	modelPath := flag.String("model", "", "load a trained model artifact (pythia train -save) as the metadata predictor")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window for in-flight streams")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	metrics := flag.String("metrics", "", "write a telemetry snapshot (JSON) to this file at exit")

	hammer := flag.Bool("hammer", false, "run the load client instead of serving")
	hammerURL := flag.String("url", "", "hammer target base URL (default: self-host a server on a loopback port)")
	hammerTable := flag.String("table", "Basket", "hammer target table name")
	hammerN := flag.Int("n", 64, "hammer: total generate requests")
	hammerC := flag.Int("c", 8, "hammer: concurrent requests")
	hammerWorkers := flag.Int("workers", 2, "hammer: per-request worker ask")
	hammerOut := flag.String("out", "BENCH_9.json", "hammer: write the measured report to this file")
	flag.Parse()

	if err := run(runConfig{
		addr: *addr, maxInflight: *maxInflight, budget: *budget,
		maxUpload: *maxUpload, model: *modelPath, drain: *drain, pprofAddr: *pprofAddr, metrics: *metrics,
		hammer: *hammer, hammerURL: *hammerURL, hammerTable: *hammerTable,
		hammerN: *hammerN, hammerC: *hammerC, hammerWorkers: *hammerWorkers, hammerOut: *hammerOut,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pythia-serve: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	addr        string
	maxInflight int
	budget      int
	maxUpload   int64
	model       string
	drain       time.Duration
	pprofAddr   string
	metrics     string

	hammer        bool
	hammerURL     string
	hammerTable   string
	hammerN       int
	hammerC       int
	hammerWorkers int
	hammerOut     string
}

func run(cfg runConfig) error {
	if cfg.pprofAddr != "" {
		dbg, err := telemetry.Serve(cfg.pprofAddr)
		if err != nil {
			return err
		}
		defer func() {
			//lint:ignore err-ignored best-effort teardown of the debug listener at exit
			_ = dbg.Close()
		}()
		fmt.Fprintf(os.Stderr, "pythia-serve: pprof and /debug/vars on http://%s/debug/pprof\n", dbg.Addr())
	}
	if cfg.metrics != "" {
		defer func() {
			if err := telemetry.Default().WriteSnapshot(cfg.metrics); err != nil {
				fmt.Fprintf(os.Stderr, "pythia-serve: write metrics: %v\n", err)
			}
		}()
	}
	if cfg.hammer {
		return runHammer(cfg)
	}
	return runServe(cfg)
}

// runServe hosts the service until SIGINT/SIGTERM, then drains.
func runServe(cfg runConfig) error {
	var pred model.Predictor
	if cfg.model != "" {
		m, err := artifact.LoadModel(cfg.model, "")
		if err != nil {
			return fmt.Errorf("load model artifact: %w", err)
		}
		pred = m
		fmt.Fprintf(os.Stderr, "pythia-serve: loaded model artifact from %s\n", cfg.model)
	}
	s := serve.NewServer(serve.Config{
		MaxInflight:    cfg.maxInflight,
		BudgetSlots:    cfg.budget,
		MaxUploadBytes: cfg.maxUpload,
		Predictor:      pred,
	})
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "pythia-serve: listening on http://%s (budget=%d, max-inflight=%d)\n",
		ln.Addr(), s.Budget().Slots(), cfg.maxInflight)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "pythia-serve: draining in-flight streams (up to %s)\n", cfg.drain)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "pythia-serve: drained, bye")
	return nil
}

// runHammer measures p50/p99 latency and examples/sec. Without -url it
// brings up its own server on a loopback port and uploads the bundled
// fixture through the real endpoint, so the numbers include the full HTTP
// path.
func runHammer(cfg runConfig) error {
	base := cfg.hammerURL
	if base == "" {
		s := serve.NewServer(serve.Config{
			MaxInflight: cfg.maxInflight,
			BudgetSlots: cfg.budget,
		})
		srv := httptestServer(s.Handler())
		defer srv.close()
		base = srv.url
		resp, err := http.Post(base+"/tables?name="+cfg.hammerTable, "text/csv", bytes.NewReader(serve.FixtureCSV))
		if err != nil {
			return fmt.Errorf("upload fixture: %w", err)
		}
		//lint:ignore err-ignored response body already fully decoded by status check below
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("upload fixture: status %d", resp.StatusCode)
		}
		fmt.Fprintf(os.Stderr, "pythia-serve: self-hosted on %s, fixture %q uploaded\n", base, cfg.hammerTable)
	}
	res, err := serve.Hammer(context.Background(), serve.HammerConfig{
		BaseURL:     base,
		Table:       cfg.hammerTable,
		Requests:    cfg.hammerN,
		Concurrency: cfg.hammerC,
		Workers:     cfg.hammerWorkers,
	})
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(cfg.hammerOut, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pythia-serve: %d requests (%d rejected, %d failed), %d examples, p50=%.1fms p99=%.1fms, %.0f examples/sec -> %s\n",
		res.Requests, res.Rejected429, res.Failures, res.Examples, res.P50MS, res.P99MS, res.ExamplesPerSec, cfg.hammerOut)
	return nil
}

// httptestServer is a minimal self-hosted listener (net/http/httptest is
// test-only by convention; this keeps the binary's dependencies plain).
type selfServer struct {
	url string
	srv *http.Server
	ln  net.Listener
}

func httptestServer(h http.Handler) *selfServer {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := &http.Server{Handler: h}
	go func() {
		//lint:ignore err-ignored Serve always returns ErrServerClosed after close
		_ = srv.Serve(ln)
	}()
	return &selfServer{url: "http://" + ln.Addr().String(), srv: srv, ln: ln}
}

func (s *selfServer) close() {
	//lint:ignore err-ignored best-effort teardown at process exit
	_ = s.srv.Close()
}
