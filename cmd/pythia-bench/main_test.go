package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func testRunners() []runner {
	mk := func(name string) runner {
		return runner{name: name, run: func(experiments.Config) (fmt.Stringer, error) {
			return nil, fmt.Errorf("not run in tests")
		}}
	}
	return []runner{mk("tableiii"), mk("tableiv"), mk("figscalability")}
}

func names(rs []runner) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return out
}

func TestSelectRunnersAll(t *testing.T) {
	sel, unknown := selectRunners(testRunners(), "all")
	if len(unknown) != 0 {
		t.Fatalf("unknown = %v", unknown)
	}
	if got := names(sel); len(got) != 3 {
		t.Fatalf("selected = %v, want all 3", got)
	}
}

func TestSelectRunnersSubsetKeepsListOrder(t *testing.T) {
	sel, unknown := selectRunners(testRunners(), "figscalability, TableIII")
	if len(unknown) != 0 {
		t.Fatalf("unknown = %v", unknown)
	}
	got := names(sel)
	if len(got) != 2 || got[0] != "tableiii" || got[1] != "figscalability" {
		t.Fatalf("selected = %v, want [tableiii figscalability]", got)
	}
}

func TestSelectRunnersReportsUnknownInOrder(t *testing.T) {
	sel, unknown := selectRunners(testRunners(), "tablevix,tableiv,figscalabilty")
	if len(unknown) != 2 || unknown[0] != "tablevix" || unknown[1] != "figscalabilty" {
		t.Fatalf("unknown = %v, want [tablevix figscalabilty]", unknown)
	}
	if got := names(sel); len(got) != 1 || got[0] != "tableiv" {
		t.Fatalf("selected = %v, want the one valid name", got)
	}
}

func TestSelectRunnersEmptySpec(t *testing.T) {
	sel, unknown := selectRunners(testRunners(), " , ")
	if len(sel) != 0 || len(unknown) != 0 {
		t.Fatalf("sel = %v, unknown = %v, want both empty", names(sel), unknown)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	in := jsonReport{
		Scale: 0.5, Seed: 7, Workers: 4,
		Experiments: []jsonExperiment{
			{Name: "tableiv", Seconds: 1.25},
			{Name: "figscalability", Seconds: 2.5, Scalability: []experiments.ScalabilityPoint{
				{TableRows: 100, Mode: "templates", Workers: 4, Examples: 12, PerSecond: 48},
			}},
		},
	}
	if err := writeJSON(path, in); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var out jsonReport
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Workers != 4 || len(out.Experiments) != 2 {
		t.Fatalf("round trip = %+v", out)
	}
	sc := out.Experiments[1].Scalability
	if len(sc) != 1 || sc[0].Workers != 4 || sc[0].Mode != "templates" {
		t.Fatalf("scalability points = %+v", sc)
	}
	if out.Experiments[0].Scalability != nil {
		t.Fatalf("non-scalability experiment carries points: %+v", out.Experiments[0])
	}
}

// TestReportCarriesTelemetry folds a registry snapshot into the report
// the way main does and asserts the telemetry object survives the round
// trip with the documented layout — counters (sqlengine row counters
// among them once the engine ran) and per-stage latency histograms.
func TestReportCarriesTelemetry(t *testing.T) {
	// Touch a couple of default-registry metrics so the snapshot is
	// structurally representative of a real run.
	telemetry.Default().Counter("sqlengine.rows_scanned").Add(0)
	telemetry.Default().LatencyHistogram("sqlengine.exec_ns").Observe(1000)

	snapshot, err := telemetry.Default().Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	report := jsonReport{Scale: 1, Seed: 7, Telemetry: snapshot}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := writeJSON(path, report); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Telemetry struct {
			Counters   map[string]int64           `json:"counters"`
			Gauges     map[string]int64           `json:"gauges"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Telemetry.Counters == nil || got.Telemetry.Histograms == nil {
		t.Fatalf("report telemetry incomplete: %s", raw)
	}
	if _, ok := got.Telemetry.Counters["sqlengine.rows_scanned"]; !ok {
		t.Errorf("telemetry counters missing sqlengine.rows_scanned: %v", got.Telemetry.Counters)
	}
	if _, ok := got.Telemetry.Histograms["sqlengine.exec_ns"]; !ok {
		t.Errorf("telemetry histograms missing sqlengine.exec_ns")
	}
}
