// Command pythia-bench reproduces every table and figure of the paper's
// evaluation and prints the report.
//
// Usage:
//
//	pythia-bench [-scale 1.0] [-seed 7] [-workers 0] [-run tableiii,tableiv,...|all]
//	             [-json report.json] [-metrics metrics.json] [-pprof addr] [-quiet]
//
// At -scale 1.0 the metadata models train on 20k synthetic web tables
// (minutes of CPU); tests and smoke runs use smaller scales. -workers
// shards the parallel stages (0 = GOMAXPROCS); results are byte-identical
// at every worker count. -json additionally writes a machine-readable
// report ("-" for stdout) with per-experiment wall-clock, the
// FigScalability throughput points and the full telemetry snapshot
// (per-stage latency histograms, sqlengine row counters, pool
// utilization). -metrics writes the snapshot alone; -pprof serves
// net/http/pprof and /debug/vars for live inspection of long runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// runner couples an experiment name with its execution.
type runner struct {
	name string
	run  func(experiments.Config) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](f func(experiments.Config) (T, error)) func(experiments.Config) (fmt.Stringer, error) {
	return func(cfg experiments.Config) (fmt.Stringer, error) {
		return f(cfg)
	}
}

// selectRunners resolves the -run spec against the runner list, returning
// the selected runners in list order plus any names that match nothing —
// a misspelled experiment must be an error, not a silent no-op run.
func selectRunners(all []runner, spec string) (selected []runner, unknown []string) {
	want := map[string]bool{}
	for _, n := range strings.Split(spec, ",") {
		n = strings.TrimSpace(strings.ToLower(n))
		if n == "" {
			continue
		}
		want[n] = true
	}
	known := map[string]bool{"all": true}
	for _, r := range all {
		known[r.name] = true
	}
	for _, n := range strings.Split(spec, ",") {
		n = strings.TrimSpace(strings.ToLower(n))
		if n != "" && !known[n] {
			unknown = append(unknown, n)
		}
	}
	for _, r := range all {
		if want["all"] || want[r.name] {
			selected = append(selected, r)
		}
	}
	return selected, unknown
}

// jsonExperiment is one entry of the -json report.
type jsonExperiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Scalability carries the FigScalability throughput points (including
	// the worker sweep); empty for every other experiment.
	Scalability []experiments.ScalabilityPoint `json:"scalability,omitempty"`
	// Streaming carries the FigStreaming memory points (materializing vs
	// streaming generation); empty for every other experiment.
	Streaming []experiments.StreamingPoint `json:"streaming,omitempty"`
	// ColdStart carries the FigColdStart artifact-store and incremental
	// ingest speedups; empty for every other experiment.
	ColdStart *experiments.FigColdStartResult `json:"coldstart,omitempty"`
}

// jsonReport is the machine-readable -json output.
type jsonReport struct {
	Scale       float64          `json:"scale"`
	Seed        int64            `json:"seed"`
	Workers     int              `json:"workers"`
	Experiments []jsonExperiment `json:"experiments"`
	// Telemetry is the runtime metrics snapshot taken after the selected
	// experiments ran: per-stage latency histograms, sqlengine row
	// counters, per-worker pool utilization (see internal/telemetry).
	Telemetry json.RawMessage `json:"telemetry"`
}

// writeJSON writes the report to path ("-" for stdout).
func writeJSON(path string, report jsonReport) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func main() {
	scale := flag.Float64("scale", 1.0, "training-volume multiplier (1.0 = paper scale)")
	seed := flag.Int64("seed", 7, "global seed")
	workers := flag.Int("workers", 0, "worker pool size for parallel stages (0 = GOMAXPROCS)")
	run := flag.String("run", "all", "comma-separated experiments: tableiii,tableiv,tablev,tablevi,tablevii,tableviii,figrows,figserialization,figcorpus,figscalability,figstreaming,figcoldstart,ablation")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file (\"-\" for stdout)")
	metricsPath := flag.String("metrics", "", "write a telemetry snapshot (JSON) to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /debug/vars on this address (e.g. localhost:6060)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *pprofAddr != "" {
		dbg, err := telemetry.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		//lint:ignore err-ignored closing the debug listener at process exit; nothing can act on its error
		defer func() { _ = dbg.Close() }()
		fmt.Fprintf(os.Stderr, "pythia-bench: pprof and /debug/vars on http://%s/debug/pprof\n", dbg.Addr())
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	all := []runner{
		{"tableiii", wrap(experiments.TableIII)},
		{"tableiv", wrap(experiments.TableIV)},
		{"tablev", wrap(experiments.TableV)},
		{"tablevi", wrap(experiments.TableVI)},
		{"tablevii", wrap(experiments.TableVII)},
		{"tableviii", wrap(experiments.TableVIII)},
		{"figrows", wrap(experiments.FigRows)},
		{"figserialization", wrap(experiments.FigSerialization)},
		{"figcorpus", wrap(experiments.FigCorpusSize)},
		{"figscalability", wrap(experiments.FigScalability)},
		{"figstreaming", wrap(experiments.FigStreaming)},
		{"figcoldstart", wrap(experiments.FigColdStart)},
		{"ablation", func(cfg experiments.Config) (fmt.Stringer, error) {
			return experiments.AnnotatorAblation(cfg), nil
		}},
	}

	selected, unknown := selectRunners(all, *run)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "pythia-bench: unknown experiment(s): %s\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "pythia-bench: -run selected no experiments")
		os.Exit(2)
	}

	report := jsonReport{Scale: *scale, Seed: *seed, Workers: *workers}
	exit := 0
	for _, r := range selected {
		start := time.Now()
		res, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: %s: %v\n", r.name, err)
			exit = 1
			continue
		}
		elapsed := time.Since(start)
		fmt.Printf("\n%s\n(%s, scale %.2f, %s)\n", res, r.name, *scale, elapsed.Round(time.Millisecond))
		entry := jsonExperiment{Name: r.name, Seconds: elapsed.Seconds()}
		if sc, ok := res.(experiments.FigScalabilityResult); ok {
			entry.Scalability = sc.Points
		}
		if st, ok := res.(experiments.FigStreamingResult); ok {
			entry.Streaming = st.Points
		}
		if cs, ok := res.(experiments.FigColdStartResult); ok {
			entry.ColdStart = &cs
		}
		report.Experiments = append(report.Experiments, entry)
	}
	snapshot, err := telemetry.Default().Snapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-bench: telemetry snapshot: %v\n", err)
		exit = 1
	} else {
		report.Telemetry = snapshot
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: write -json: %v\n", err)
			exit = 1
		}
	}
	if *metricsPath != "" {
		if err := telemetry.Default().WriteSnapshot(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}
