// Command pythia-bench reproduces every table and figure of the paper's
// evaluation and prints the report.
//
// Usage:
//
//	pythia-bench [-scale 1.0] [-seed 7] [-run tableiii,tableiv,...|all] [-quiet]
//
// At -scale 1.0 the metadata models train on 20k synthetic web tables
// (minutes of CPU); tests and smoke runs use smaller scales.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// runner couples an experiment name with its execution.
type runner struct {
	name string
	run  func(experiments.Config) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](f func(experiments.Config) (T, error)) func(experiments.Config) (fmt.Stringer, error) {
	return func(cfg experiments.Config) (fmt.Stringer, error) {
		return f(cfg)
	}
}

func main() {
	scale := flag.Float64("scale", 1.0, "training-volume multiplier (1.0 = paper scale)")
	seed := flag.Int64("seed", 7, "global seed")
	run := flag.String("run", "all", "comma-separated experiments: tableiii,tableiv,tablev,tablevi,tablevii,tableviii,figrows,figserialization,figcorpus,figscalability,ablation")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	all := []runner{
		{"tableiii", wrap(experiments.TableIII)},
		{"tableiv", wrap(experiments.TableIV)},
		{"tablev", wrap(experiments.TableV)},
		{"tablevi", wrap(experiments.TableVI)},
		{"tablevii", wrap(experiments.TableVII)},
		{"tableviii", wrap(experiments.TableVIII)},
		{"figrows", wrap(experiments.FigRows)},
		{"figserialization", wrap(experiments.FigSerialization)},
		{"figcorpus", wrap(experiments.FigCorpusSize)},
		{"figscalability", wrap(experiments.FigScalability)},
		{"ablation", func(cfg experiments.Config) (fmt.Stringer, error) {
			return experiments.AnnotatorAblation(cfg), nil
		}},
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(n))] = true
	}
	runAll := want["all"]

	exit := 0
	for _, r := range all {
		if !runAll && !want[r.name] {
			continue
		}
		start := time.Now()
		res, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: %s: %v\n", r.name, err)
			exit = 1
			continue
		}
		fmt.Printf("\n%s\n(%s, scale %.2f, %s)\n", res, r.name, *scale, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
